/**
 * @file
 * Property-style sweeps over the covert channels: the directions that
 * must hold for any sane parameterization (more rounds -> same or
 * better reliability; larger d -> larger eviction signal; faster
 * clock -> higher rate; message content must round-trip).
 *
 * The registry-wide harness at the bottom pins down every channel's
 * decode behavior: for all registered channels x all supported CPU
 * models it asserts the zero-noise round-trip (with noise knobs
 * forced to zero the receiver recovers the message exactly), seed
 * determinism (a spec is a pure function of its seed), and the
 * Fig. 8 error direction (shrinking d raises the MT eviction error).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "common/message.hh"
#include "core/mt_channels.hh"
#include "core/nonmt_channels.hh"
#include "core/trial_context.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

std::vector<bool>
altMessage(std::size_t bits)
{
    Rng rng(1);
    return makeMessage(MessagePattern::Alternating, bits, rng);
}

class EvictionDSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EvictionDSweep, SignalPositiveAndDecodableAtEveryD)
{
    // A 1-bit must always read *slower* than a 0-bit (evictions add
    // MITE refills on top of the matched encode length), and the
    // channel must decode reliably on a quiet machine for every d.
    // Note the raw signal magnitude is not monotone in d: the fast
    // variant's encode phase length scales with N+1-d and dominates
    // at small d.
    const int d = GetParam();
    TrialContext ctx(xeonE2288G(), 9); // quiet machine: clean means
    ChannelConfig cfg;
    cfg.d = d;
    NonMtEvictionChannel channel(ctx.core(), cfg);
    const auto res = channel.transmit(altMessage(40), ctx);
    EXPECT_GT(res.meanObs1 - res.meanObs0, 0.0);
    EXPECT_LT(res.errorRate, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Ways, EvictionDSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class RoundsSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundsSweep, MoreRoundsNeverBreaksTheChannel)
{
    TrialContext ctx(gold6226(),
                     10 + static_cast<unsigned>(GetParam()));
    ChannelConfig cfg;
    cfg.d = 6;
    cfg.rounds = GetParam();
    NonMtEvictionChannel channel(ctx.core(), cfg);
    const auto res = channel.transmit(altMessage(40), ctx);
    EXPECT_LT(res.errorRate, 0.15) << "rounds=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rounds, RoundsSweep,
                         ::testing::Values(5, 10, 20, 40));

TEST(ChannelProperties, RateScalesWithRounds)
{
    // Per-bit time is dominated by the rounds loop: quadrupling the
    // rounds must cut the rate by roughly 2-4x.
    auto rate_at = [](int rounds) {
        TrialContext ctx(xeonE2288G(), 21);
        ChannelConfig cfg;
        cfg.d = 6;
        cfg.rounds = rounds;
        NonMtEvictionChannel channel(ctx.core(), cfg);
        return channel.transmit(altMessage(40), ctx).transmissionKbps;
    };
    const double r10 = rate_at(10);
    const double r40 = rate_at(40);
    EXPECT_GT(r10, 1.8 * r40);
    EXPECT_LT(r10, 6.0 * r40);
}

TEST(ChannelProperties, FasterClockFasterChannel)
{
    // Identical microarchitecture + noise, different frequency.
    CpuModel slow = xeonE2288G();
    CpuModel fast = xeonE2288G();
    slow.freqGhz = 2.0;
    fast.freqGhz = 4.0;
    auto rate_on = [](const CpuModel &model) {
        TrialContext ctx(model, 22);
        ChannelConfig cfg;
        cfg.d = 6;
        NonMtEvictionChannel channel(ctx.core(), cfg);
        return channel.transmit(altMessage(40), ctx).transmissionKbps;
    };
    EXPECT_NEAR(rate_on(fast) / rate_on(slow), 2.0, 0.2);
}

TEST(ChannelProperties, TextRoundTripsThroughTheChannel)
{
    TrialContext ctx(xeonE2288G(), 23);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(ctx.core(), cfg);
    const std::string text = "frontend";
    const auto res = channel.transmit(textToBits(text), ctx);
    EXPECT_EQ(bitsToText(res.received), text);
}

class PatternSweep : public ::testing::TestWithParam<MessagePattern>
{
};

TEST_P(PatternSweep, NonMtEvictionHandlesEveryPattern)
{
    TrialContext ctx(xeonE2288G(), 24);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(ctx.core(), cfg);
    Rng rng(25);
    const auto msg = makeMessage(GetParam(), 60, rng);
    const auto res = channel.transmit(msg, ctx);
    EXPECT_LT(res.errorRate, 0.1) << toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PatternSweep,
    ::testing::ValuesIn(allMessagePatterns()),
    [](const ::testing::TestParamInfo<MessagePattern> &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

class TargetSetSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TargetSetSweep, ChannelWorksOnAnySet)
{
    TrialContext ctx(xeonE2288G(), 26);
    ChannelConfig cfg;
    cfg.d = 6;
    cfg.targetSet = GetParam();
    cfg.altSet = (GetParam() + 11) % 32;
    NonMtEvictionChannel channel(ctx.core(), cfg);
    const auto res = channel.transmit(altMessage(40), ctx);
    EXPECT_LT(res.errorRate, 0.1) << "set=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sets, TargetSetSweep,
                         ::testing::Values(0, 1, 7, 15, 16, 23, 31));

TEST(ChannelProperties, MtStepsScaleBitTime)
{
    auto rate_at = [](int steps) {
        TrialContext ctx(gold6226(), 27);
        ChannelConfig cfg;
        cfg.d = 6;
        cfg.mtSteps = steps;
        MtEvictionChannel channel(ctx.core(), cfg);
        return channel.transmit(altMessage(20), ctx).transmissionKbps;
    };
    EXPECT_GT(rate_at(10), 1.5 * rate_at(40));
}

// ---- Registry-wide harness: every channel x every supported CPU ----

/** Noise knobs forced to zero: timing jitter, OS spikes,
 *  duration-proportional jitter, SGX transition jitter, and RAPL
 *  measurement noise. What remains is the deterministic
 *  microarchitectural signal the channels decode. */
std::map<std::string, double>
zeroNoiseOverrides(const std::string &channel)
{
    std::map<std::string, double> overrides = {
        {"model.noiseStddevCycles", 0},
        {"model.spikeProb", 0},
        {"model.jitterPerKcycle", 0},
        {"model.sgxEntryJitterStddev", 0},
        {"model.raplNoiseStddevMicroJoules", 0},
    };
    // SGX amplification rounds are only there to beat entry/exit
    // jitter; with jitter at zero a fraction suffices, keeping the
    // suite fast on one core.
    if (channel.rfind("sgx-", 0) == 0) {
        overrides["sgxRounds"] = 1500;
        overrides["sgxMtSteps"] = 30;
        overrides["sgxMtMeasPerStep"] = 10;
    }
    return overrides;
}

/** The RAPL refresh grid straddles bit boundaries for the
 *  misalignment power encode on the higher-clocked machines, lagging
 *  the first received bits by one position (deterministic
 *  inter-symbol interference, not noise). The paper only reports the
 *  power channels on the Gold 6226, where the round-trip is exact. */
bool
isKnownPowerIsiPair(const std::string &channel, const std::string &cpu)
{
    return channel == "power-misalignment" && cpu != gold6226().name;
}

const std::vector<ExperimentResult> &
zeroNoiseBatch()
{
    static const std::vector<ExperimentResult> results = [] {
        std::vector<ExperimentSpec> specs;
        for (const std::string &channel : allChannelNames()) {
            for (const CpuModel *cpu : allCpuModels()) {
                if (!channelSupportedOn(channel, *cpu))
                    continue;
                ExperimentSpec spec;
                spec.channel = channel;
                spec.cpu = cpu->name;
                spec.seed = 3;
                spec.messageBits = 8;
                spec.overrides = zeroNoiseOverrides(channel);
                specs.push_back(std::move(spec));
            }
        }
        return ExperimentRunner().run(specs);
    }();
    return results;
}

TEST(RegistryProperties, EveryChannelCoveredOnEverySupportedCpu)
{
    std::set<std::string> channels;
    std::size_t pairs = 0;
    for (const ExperimentResult &res : zeroNoiseBatch()) {
        channels.insert(res.spec.channel);
        ++pairs;
    }
    EXPECT_EQ(channels.size(), allChannelNames().size());
    // 4 CPUs; mt-* lose the E-2288G (3), sgx-* the Gold 6226 (3),
    // sgx-mt-* both (2): 7*4 + 2*3 + 4*3 + 2*2 = 50.
    EXPECT_EQ(pairs, 50u);
}

TEST(RegistryProperties, ZeroNoiseRoundTripsExactly)
{
    for (const ExperimentResult &res : zeroNoiseBatch()) {
        if (isKnownPowerIsiPair(res.spec.channel, res.spec.cpu))
            continue;
        ASSERT_TRUE(res.ok)
            << res.spec.channel << " on " << res.spec.cpu << ": "
            << res.error;
        EXPECT_EQ(res.result.received, res.result.sent)
            << res.spec.channel << " on " << res.spec.cpu;
        EXPECT_EQ(res.result.errorRate, 0.0)
            << res.spec.channel << " on " << res.spec.cpu;
    }
}

TEST(RegistryProperties, PowerIsiPairsStillDecodeAboveChance)
{
    int found = 0;
    for (const ExperimentResult &res : zeroNoiseBatch()) {
        if (!isKnownPowerIsiPair(res.spec.channel, res.spec.cpu))
            continue;
        ++found;
        ASSERT_TRUE(res.ok) << res.spec.cpu << ": " << res.error;
        // Deterministic one-bit lag at the start, then locked: far
        // better than chance, with distinct class means (the sign
        // flips on the E-2288G, where LSD delivery makes the
        // misaligned encode the *cheaper* path — nearest-mean decode
        // is sign-agnostic).
        EXPECT_LT(res.result.errorRate, 0.4) << res.spec.cpu;
        EXPECT_NE(res.result.meanObs1, res.result.meanObs0)
            << res.spec.cpu;
    }
    EXPECT_EQ(found, 3); // E-2174G, E-2286G, E-2288G
}

TEST(RegistryProperties, SeedDeterminismAcrossReruns)
{
    // Default (noisy) models: the noise streams themselves are seeded,
    // so a spec must be a pure function of its seed.
    std::vector<ExperimentSpec> specs;
    for (const std::string &channel : allChannelNames()) {
        for (const CpuModel *cpu : allCpuModels()) {
            if (!channelSupportedOn(channel, *cpu))
                continue;
            ExperimentSpec spec;
            spec.channel = channel;
            spec.cpu = cpu->name;
            spec.seed = 11;
            spec.messageBits = 6;
            spec.pattern = MessagePattern::Random;
            spec.overrides = zeroNoiseOverrides(channel);
            // Keep the noise: only the SGX round reductions apply.
            spec.overrides.erase("model.noiseStddevCycles");
            spec.overrides.erase("model.spikeProb");
            spec.overrides.erase("model.jitterPerKcycle");
            spec.overrides.erase("model.sgxEntryJitterStddev");
            spec.overrides.erase("model.raplNoiseStddevMicroJoules");
            // One power pair is plenty at 20k rounds/bit.
            if (channel.rfind("power-", 0) == 0 &&
                cpu->name != gold6226().name) {
                continue;
            }
            specs.push_back(std::move(spec));
        }
    }
    const ExperimentRunner runner;
    const auto first = runner.run(specs);
    const auto second = runner.run(specs);
    const std::string json1 = JsonSink("seeds").render(first);
    const std::string json2 = JsonSink("seeds").render(second);
    EXPECT_EQ(json1, json2);
}

TEST(RegistryProperties, MtEvictionErrorGrowsAsDShrinks)
{
    // Fig. 8's direction: at d = 1 the receiver's timing signal is
    // tiny and the MT eviction error is far above its d = 6 value,
    // on every SMT machine. Averaged over trials to keep the
    // assertion off the noise floor.
    SweepSpec sweep;
    sweep.channels = {"mt-eviction"};
    for (const CpuModel *cpu : smtCpuModels())
        sweep.cpus.push_back(cpu->name);
    sweep.axes = {{"d", {1, 6}}};
    sweep.trials = 6;
    sweep.messageBits = 40;
    sweep.seed = 42;

    const auto cells =
        aggregateSweep(runSweep(sweep, ExperimentRunner()));
    ASSERT_EQ(cells.size(), 6u);
    for (std::size_t c = 0; c < cells.size(); c += 2) {
        const SweepCellSummary &small_d = cells[c];
        const SweepCellSummary &large_d = cells[c + 1];
        ASSERT_EQ(small_d.cpu, large_d.cpu);
        ASSERT_EQ(small_d.overrides.at("d"), 1);
        ASSERT_EQ(large_d.overrides.at("d"), 6);
        EXPECT_GT(small_d.errorRate.mean(),
                  large_d.errorRate.mean() + 0.05)
            << small_d.cpu;
    }
}

TEST(RegistryProperties, NonMtEvictionErrorMonotoneInD)
{
    // The non-MT eviction variants sit near their error floor at
    // calibrated noise, so the claim is non-strict: growing d never
    // makes decoding worse (beyond trial scatter).
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction",
                      "nonmt-stealthy-eviction"};
    sweep.cpus = {gold6226().name};
    sweep.axes = {{"d", {1, 6}}};
    sweep.trials = 6;
    sweep.messageBits = 40;
    sweep.seed = 42;

    const auto cells =
        aggregateSweep(runSweep(sweep, ExperimentRunner()));
    ASSERT_EQ(cells.size(), 4u);
    for (std::size_t c = 0; c < cells.size(); c += 2) {
        EXPECT_GE(cells[c].errorRate.mean() + 0.02,
                  cells[c + 1].errorRate.mean())
            << cells[c].channel;
    }
}

} // namespace
} // namespace lf
