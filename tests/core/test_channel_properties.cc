/**
 * @file
 * Property-style sweeps over the covert channels: the directions that
 * must hold for any sane parameterization (more rounds -> same or
 * better reliability; larger d -> larger eviction signal; faster
 * clock -> higher rate; message content must round-trip).
 */

#include <gtest/gtest.h>

#include <cctype>

#include "common/message.hh"
#include "core/mt_channels.hh"
#include "core/nonmt_channels.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

std::vector<bool>
altMessage(std::size_t bits)
{
    Rng rng(1);
    return makeMessage(MessagePattern::Alternating, bits, rng);
}

class EvictionDSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EvictionDSweep, SignalPositiveAndDecodableAtEveryD)
{
    // A 1-bit must always read *slower* than a 0-bit (evictions add
    // MITE refills on top of the matched encode length), and the
    // channel must decode reliably on a quiet machine for every d.
    // Note the raw signal magnitude is not monotone in d: the fast
    // variant's encode phase length scales with N+1-d and dominates
    // at small d.
    const int d = GetParam();
    Core core(xeonE2288G(), 9); // quiet machine: clean means
    ChannelConfig cfg;
    cfg.d = d;
    NonMtEvictionChannel channel(core, cfg);
    const auto res = channel.transmit(altMessage(40));
    EXPECT_GT(res.meanObs1 - res.meanObs0, 0.0);
    EXPECT_LT(res.errorRate, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Ways, EvictionDSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class RoundsSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundsSweep, MoreRoundsNeverBreaksTheChannel)
{
    Core core(gold6226(), 10 + static_cast<unsigned>(GetParam()));
    ChannelConfig cfg;
    cfg.d = 6;
    cfg.rounds = GetParam();
    NonMtEvictionChannel channel(core, cfg);
    const auto res = channel.transmit(altMessage(40));
    EXPECT_LT(res.errorRate, 0.15) << "rounds=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rounds, RoundsSweep,
                         ::testing::Values(5, 10, 20, 40));

TEST(ChannelProperties, RateScalesWithRounds)
{
    // Per-bit time is dominated by the rounds loop: quadrupling the
    // rounds must cut the rate by roughly 2-4x.
    auto rate_at = [](int rounds) {
        Core core(xeonE2288G(), 21);
        ChannelConfig cfg;
        cfg.d = 6;
        cfg.rounds = rounds;
        NonMtEvictionChannel channel(core, cfg);
        return channel.transmit(altMessage(40)).transmissionKbps;
    };
    const double r10 = rate_at(10);
    const double r40 = rate_at(40);
    EXPECT_GT(r10, 1.8 * r40);
    EXPECT_LT(r10, 6.0 * r40);
}

TEST(ChannelProperties, FasterClockFasterChannel)
{
    // Identical microarchitecture + noise, different frequency.
    CpuModel slow = xeonE2288G();
    CpuModel fast = xeonE2288G();
    slow.freqGhz = 2.0;
    fast.freqGhz = 4.0;
    auto rate_on = [](const CpuModel &model) {
        Core core(model, 22);
        ChannelConfig cfg;
        cfg.d = 6;
        NonMtEvictionChannel channel(core, cfg);
        return channel.transmit(altMessage(40)).transmissionKbps;
    };
    EXPECT_NEAR(rate_on(fast) / rate_on(slow), 2.0, 0.2);
}

TEST(ChannelProperties, TextRoundTripsThroughTheChannel)
{
    Core core(xeonE2288G(), 23);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(core, cfg);
    const std::string text = "frontend";
    const auto res = channel.transmit(textToBits(text));
    EXPECT_EQ(bitsToText(res.received), text);
}

class PatternSweep : public ::testing::TestWithParam<MessagePattern>
{
};

TEST_P(PatternSweep, NonMtEvictionHandlesEveryPattern)
{
    Core core(xeonE2288G(), 24);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(core, cfg);
    Rng rng(25);
    const auto msg = makeMessage(GetParam(), 60, rng);
    const auto res = channel.transmit(msg);
    EXPECT_LT(res.errorRate, 0.1) << toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PatternSweep,
    ::testing::ValuesIn(allMessagePatterns()),
    [](const ::testing::TestParamInfo<MessagePattern> &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

class TargetSetSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TargetSetSweep, ChannelWorksOnAnySet)
{
    Core core(xeonE2288G(), 26);
    ChannelConfig cfg;
    cfg.d = 6;
    cfg.targetSet = GetParam();
    cfg.altSet = (GetParam() + 11) % 32;
    NonMtEvictionChannel channel(core, cfg);
    const auto res = channel.transmit(altMessage(40));
    EXPECT_LT(res.errorRate, 0.1) << "set=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sets, TargetSetSweep,
                         ::testing::Values(0, 1, 7, 15, 16, 23, 31));

TEST(ChannelProperties, MtStepsScaleBitTime)
{
    auto rate_at = [](int steps) {
        Core core(gold6226(), 27);
        ChannelConfig cfg;
        cfg.d = 6;
        cfg.mtSteps = steps;
        MtEvictionChannel channel(core, cfg);
        return channel.transmit(altMessage(20)).transmissionKbps;
    };
    EXPECT_GT(rate_at(10), 1.5 * rate_at(40));
}

} // namespace
} // namespace lf
