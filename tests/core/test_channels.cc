/**
 * @file
 * Integration tests for the covert channels: every channel family must
 * transmit an alternating message with a usable error rate on every
 * machine it applies to, with sane transmission rates; variants must
 * order the way the paper's Table III orders them.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "common/message.hh"
#include "core/mt_channels.hh"
#include "core/nonmt_channels.hh"
#include "core/power_channels.hh"
#include "core/trial_context.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

std::vector<bool>
message(std::size_t bits = 60)
{
    Rng rng(3);
    return makeMessage(MessagePattern::Alternating, bits, rng);
}

ChannelConfig
evictCfg(bool stealthy = false)
{
    ChannelConfig cfg;
    cfg.d = 6;
    cfg.stealthy = stealthy;
    return cfg;
}

ChannelConfig
misalignCfg(bool stealthy = false)
{
    ChannelConfig cfg;
    cfg.d = 5;
    cfg.M = 8;
    cfg.stealthy = stealthy;
    return cfg;
}

// ---- Parameterized over all four CPU models. ----

class NonMtChannelsOnCpu
    : public ::testing::TestWithParam<const CpuModel *>
{
};

TEST_P(NonMtChannelsOnCpu, FastEvictionWorks)
{
    TrialContext ctx(*GetParam(), 11);
    NonMtEvictionChannel channel(ctx.core(), evictCfg());
    const auto res = channel.transmit(message(), ctx);
    EXPECT_LT(res.errorRate, 0.12);
    EXPECT_GT(res.transmissionKbps, 100.0);
    EXPECT_LT(res.transmissionKbps, 20000.0);
}

TEST_P(NonMtChannelsOnCpu, StealthyEvictionWorks)
{
    TrialContext ctx(*GetParam(), 12);
    NonMtEvictionChannel channel(ctx.core(), evictCfg(true));
    const auto res = channel.transmit(message(), ctx);
    EXPECT_LT(res.errorRate, 0.2);
}

TEST_P(NonMtChannelsOnCpu, FastMisalignmentWorks)
{
    TrialContext ctx(*GetParam(), 13);
    NonMtMisalignmentChannel channel(ctx.core(), misalignCfg());
    const auto res = channel.transmit(message(), ctx);
    EXPECT_LT(res.errorRate, 0.15);
}

TEST_P(NonMtChannelsOnCpu, StealthyMisalignmentBeatsGuessing)
{
    TrialContext ctx(*GetParam(), 14);
    NonMtMisalignmentChannel channel(ctx.core(), misalignCfg(true));
    const auto res = channel.transmit(message(100), ctx);
    EXPECT_LT(res.errorRate, 0.35); // noisy but far from 50%
}

TEST_P(NonMtChannelsOnCpu, SlowSwitchWorks)
{
    TrialContext ctx(*GetParam(), 15);
    ChannelConfig cfg;
    cfg.r = 16;
    cfg.rounds = 20;
    SlowSwitchChannel channel(ctx.core(), cfg);
    const auto res = channel.transmit(message(), ctx);
    EXPECT_LT(res.errorRate, 0.12);
    // Mixed issue must be distinguishable from ordered issue.
    EXPECT_NE(res.meanObs0, res.meanObs1);
}

TEST_P(NonMtChannelsOnCpu, FastBeatsStealthyRate)
{
    TrialContext fast_ctx(*GetParam(), 16);
    NonMtEvictionChannel fast(fast_ctx.core(), evictCfg(false));
    const auto fast_res = fast.transmit(message(), fast_ctx);
    TrialContext stealthy_ctx(*GetParam(), 16);
    NonMtEvictionChannel stealthy(stealthy_ctx.core(), evictCfg(true));
    const auto stealthy_res = stealthy.transmit(message(),
                                                stealthy_ctx);
    EXPECT_GT(fast_res.transmissionKbps,
              stealthy_res.transmissionKbps * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    AllCpus, NonMtChannelsOnCpu,
    ::testing::ValuesIn(allCpuModels()),
    [](const ::testing::TestParamInfo<const CpuModel *> &info) {
        std::string name = info.param->name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// ---- MT channels: SMT machines only. ----

class MtChannelsOnCpu
    : public ::testing::TestWithParam<const CpuModel *>
{
};

TEST_P(MtChannelsOnCpu, EvictionWorks)
{
    TrialContext ctx(*GetParam(), 21);
    MtEvictionChannel channel(ctx.core(), evictCfg());
    const auto res = channel.transmit(message(40), ctx);
    EXPECT_LT(res.errorRate, 0.3);
    EXPECT_GT(res.transmissionKbps, 20.0);
    EXPECT_LT(res.transmissionKbps, 1000.0);
}

TEST_P(MtChannelsOnCpu, MisalignmentWorks)
{
    TrialContext ctx(*GetParam(), 22);
    MtMisalignmentChannel channel(ctx.core(), misalignCfg());
    const auto res = channel.transmit(message(40), ctx);
    EXPECT_LT(res.errorRate, 0.3);
}

TEST_P(MtChannelsOnCpu, NonMtFasterThanMt)
{
    TrialContext mt_ctx(*GetParam(), 23);
    MtEvictionChannel mt(mt_ctx.core(), evictCfg());
    const auto mt_res = mt.transmit(message(30), mt_ctx);
    TrialContext nonmt_ctx(*GetParam(), 23);
    NonMtEvictionChannel nonmt(nonmt_ctx.core(), evictCfg());
    const auto nonmt_res = nonmt.transmit(message(30), nonmt_ctx);
    EXPECT_GT(nonmt_res.transmissionKbps,
              3.0 * mt_res.transmissionKbps);
}

INSTANTIATE_TEST_SUITE_P(
    SmtCpus, MtChannelsOnCpu, ::testing::ValuesIn(smtCpuModels()),
    [](const ::testing::TestParamInfo<const CpuModel *> &info) {
        std::string name = info.param->name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(MtChannels, RequireSmt)
{
    Core core(xeonE2288G());
    EXPECT_DEATH(MtEvictionChannel(core, evictCfg()), "SMT");
}

TEST(MtChannels, RequireUpperHalfTargetSet)
{
    Core core(gold6226());
    ChannelConfig cfg = evictCfg();
    cfg.targetSet = 3;
    MtEvictionChannel channel(core, cfg);
    EXPECT_DEATH(channel.setup(), "partition-mapped");
}

// ---- Power channels (Gold 6226, Table V setting). ----

TEST(PowerChannels, EvictionTransmits)
{
    TrialContext ctx(gold6226(), 31);
    PowerChannelConfig power_cfg;
    power_cfg.rounds = 12000;
    PowerEvictionChannel channel(ctx.core(), evictCfg(true),
                                 power_cfg);
    Rng rng(4);
    const auto msg = makeMessage(MessagePattern::Alternating, 8, rng);
    const auto res = channel.transmit(msg, ctx, 6);
    EXPECT_LT(res.errorRate, 0.25);
    // Orders of magnitude below the timing channels.
    EXPECT_LT(res.transmissionKbps, 100.0);
}

TEST(PowerChannels, MisalignmentTransmits)
{
    TrialContext ctx(gold6226(), 32);
    PowerChannelConfig power_cfg;
    power_cfg.rounds = 20000;
    PowerMisalignmentChannel channel(ctx.core(), misalignCfg(true),
                                     power_cfg);
    Rng rng(5);
    const auto msg = makeMessage(MessagePattern::Alternating, 8, rng);
    const auto res = channel.transmit(msg, ctx, 6);
    EXPECT_LT(res.errorRate, 0.25);
}

// ---- Config validation. ----

TEST(ChannelConfig, BadDPanics)
{
    Core core(gold6226());
    ChannelConfig cfg;
    cfg.d = 0;
    EXPECT_DEATH(NonMtEvictionChannel(core, cfg), "d=0");
}

TEST(ChannelConfig, MisalignNeedsMGreaterThanD)
{
    Core core(gold6226());
    ChannelConfig cfg;
    cfg.d = 8;
    cfg.M = 8;
    NonMtMisalignmentChannel channel(core, cfg);
    EXPECT_DEATH(channel.setup(), "M > d");
}

} // namespace
} // namespace lf
