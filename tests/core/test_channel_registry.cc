/**
 * @file
 * Registry tests: the canonical name set matches the documented
 * channel list, every name constructs and transmits on every CPU
 * model it supports, and lookups fail loudly for unknown names.
 */

#include <gtest/gtest.h>

#include "core/channel_registry.hh"
#include "run/experiment.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

/** The documented channel set, in paper-table order (README.md). */
const std::vector<std::string> kDocumentedNames = {
    "nonmt-fast-eviction",
    "nonmt-stealthy-eviction",
    "nonmt-fast-misalignment",
    "nonmt-stealthy-misalignment",
    "mt-eviction",
    "mt-misalignment",
    "slow-switch",
    "power-eviction",
    "power-misalignment",
    "sgx-nonmt-fast-eviction",
    "sgx-nonmt-stealthy-eviction",
    "sgx-nonmt-fast-misalignment",
    "sgx-nonmt-stealthy-misalignment",
    "sgx-mt-eviction",
    "sgx-mt-misalignment",
};

TEST(ChannelRegistry, NamesMatchDocumentedSet)
{
    EXPECT_EQ(allChannelNames(), kDocumentedNames);
}

TEST(ChannelRegistry, HasChannel)
{
    for (const std::string &name : kDocumentedNames)
        EXPECT_TRUE(hasChannel(name)) << name;
    EXPECT_FALSE(hasChannel("no-such-channel"));
    EXPECT_FALSE(hasChannel(""));
}

TEST(ChannelRegistry, UnknownNameIsFatal)
{
    Core core(gold6226(), 1);
    EXPECT_EXIT(makeChannel("no-such-channel", core, ChannelConfig{}),
                ::testing::ExitedWithCode(1), "unknown channel");
}

TEST(ChannelRegistry, InfoIsSelfConsistent)
{
    for (const std::string &name : kDocumentedNames) {
        const ChannelInfo &info = channelInfo(name);
        EXPECT_EQ(info.name, name);
        EXPECT_FALSE(info.description.empty()) << name;
        // SMT-only and SGX-only prefixes encode the constraints.
        EXPECT_EQ(info.requiresSgx, name.rfind("sgx-", 0) == 0)
            << name;
        const bool mt = name.rfind("mt-", 0) == 0 ||
            name.rfind("sgx-mt-", 0) == 0;
        EXPECT_EQ(info.requiresSmt, mt) << name;
        EXPECT_EQ(info.powerObservable, name.rfind("power-", 0) == 0)
            << name;
    }
}

TEST(ChannelRegistry, SupportConstraints)
{
    // The E-2288G has SMT disabled: no MT channels.
    EXPECT_FALSE(channelSupportedOn("mt-eviction", xeonE2288G()));
    EXPECT_TRUE(channelSupportedOn("mt-eviction", gold6226()));
    // The Gold 6226 has no SGX.
    EXPECT_FALSE(channelSupportedOn("sgx-nonmt-fast-eviction",
                                    gold6226()));
    EXPECT_TRUE(channelSupportedOn("sgx-nonmt-fast-eviction",
                                   xeonE2174G()));
    // SGX + MT needs both.
    EXPECT_FALSE(channelSupportedOn("sgx-mt-eviction", xeonE2288G()));
    EXPECT_TRUE(channelSupportedOn("sgx-mt-eviction", xeonE2286G()));
}

TEST(ChannelRegistry, ConstructsDirectly)
{
    // makeChannel with explicit config on a supported model.
    Core core(gold6226(), 7);
    auto channel = makeChannel("nonmt-fast-eviction", core,
                               defaultChannelConfig(
                                   "nonmt-fast-eviction"));
    ASSERT_NE(channel, nullptr);
    EXPECT_FALSE(channel->name().empty());
    EXPECT_EQ(&channel->core(), &core);
}

TEST(ChannelRegistry, OverrideKeysRoundTrip)
{
    ChannelConfig cfg;
    ChannelExtras extras;
    for (const std::string &key : channelOverrideKeys())
        EXPECT_TRUE(applyChannelOverride(cfg, extras, key, 4)) << key;
    EXPECT_FALSE(applyChannelOverride(cfg, extras, "bogus", 1));
    EXPECT_EQ(cfg.d, 4);
    EXPECT_EQ(extras.power.rounds, 4);
    EXPECT_EQ(extras.sgx.rounds, 4);
}

/**
 * Smoke: every registered channel transmits an 8-bit message on every
 * CPU model that supports it, with error rate no worse than guessing.
 * Power/SGX amplification rounds are cut down so the whole sweep
 * stays fast; the error bound is the smoke bound (0.5), not the
 * paper-grade bound of test_channels.cc.
 */
TEST(ChannelRegistry, EveryChannelTransmitsEverywhere)
{
    std::uint64_t seed = 40;
    for (const std::string &name : allChannelNames()) {
        for (const CpuModel *cpu : allCpuModels()) {
            ExperimentSpec spec;
            spec.channel = name;
            spec.cpu = cpu->name;
            spec.seed = ++seed;
            spec.messageBits = 8;
            spec.preambleBits = 8;
            spec.overrides["powerRounds"] = 4000;
            spec.overrides["sgxRounds"] = 1000;
            spec.overrides["sgxMtSteps"] = 20;

            const ExperimentResult res = runExperiment(spec);
            if (!channelSupportedOn(name, *cpu)) {
                EXPECT_TRUE(res.skipped) << name << " on " << cpu->name;
                EXPECT_FALSE(res.ok);
                continue;
            }
            ASSERT_TRUE(res.ok)
                << name << " on " << cpu->name << ": " << res.error;
            EXPECT_EQ(res.result.sent.size(), 8u);
            EXPECT_EQ(res.result.received.size(), 8u);
            EXPECT_LE(res.result.errorRate, 0.5)
                << name << " on " << cpu->name;
            EXPECT_GT(res.result.transmissionKbps, 0.0)
                << name << " on " << cpu->name;
            EXPECT_EQ(res.result.seed, spec.seed);
            EXPECT_EQ(res.result.preambleBits, 8);
        }
    }
}

} // namespace
} // namespace lf
