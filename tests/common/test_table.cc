/** @file Tests for table rendering and number formatting. */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace lf {
namespace {

TEST(TextTable, RenderAligned)
{
    TextTable t("Title");
    t.setHeader({"A", "Bee"});
    t.addRow({"longcell", "x"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| longcell | x   |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TextTable, CsvEscaping)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"has,comma", "has\"quote"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Format, Fixed)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(1.0, 0), "1");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.0268), "2.68%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(Format, Eng)
{
    EXPECT_EQ(formatEng(8.4e9), "8.4e9");
    EXPECT_EQ(formatEng(0.0), "0");
    EXPECT_EQ(formatEng(1.5e6), "1.5e6");
}

} // namespace
} // namespace lf
