/** @file Tests for streaming statistics and histograms. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace lf {
namespace {

TEST(OnlineStats, Basics)
{
    OnlineStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesCombined)
{
    OnlineStats a;
    OnlineStats b;
    OnlineStats all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

// The population-variance convention (stats.hh) must hold everywhere:
// online accumulation, shard merging, and the batch helpers all agree
// on the same number for the same samples.
TEST(OnlineStats, VarianceConventionMatchesBatchHelpers)
{
    std::vector<double> values;
    OnlineStats online;
    for (int i = 0; i < 37; ++i) {
        const double v = 3.0 + 1.7 * i - 0.05 * i * i;
        values.push_back(v);
        online.add(v);
    }
    // Population: divide by n.
    double sq = 0.0;
    for (double v : values)
        sq += (v - online.mean()) * (v - online.mean());
    const double population =
        sq / static_cast<double>(values.size());

    EXPECT_NEAR(online.variance(), population, 1e-9);
    EXPECT_NEAR(stddev(values), std::sqrt(population), 1e-9);
    EXPECT_NEAR(online.stddev(), stddev(values), 1e-9);
}

TEST(OnlineStats, MergeKeepsBatchConvention)
{
    std::vector<double> values;
    OnlineStats left;
    OnlineStats right;
    for (int i = 0; i < 23; ++i) {
        const double v = std::sin(0.3 * i) * 11.0;
        values.push_back(v);
        (i < 9 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), values.size());
    EXPECT_NEAR(left.mean(), mean(values), 1e-9);
    EXPECT_NEAR(left.stddev(), stddev(values), 1e-9);
}

TEST(OnlineStats, SingleSampleIsZeroEverywhere)
{
    OnlineStats s;
    s.add(42.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(stddev({42.0}), 0.0);
    OnlineStats merged;
    merged.merge(s);
    EXPECT_EQ(merged.variance(), 0.0);
}

TEST(OnlineStats, ResetClears)
{
    OnlineStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BinningAndDensity)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(0.9);
    h.add(5.5);
    h.add(-1.0);
    h.add(20.0);
    EXPECT_EQ(h.totalCount(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.density(0), 0.4);
}

TEST(Histogram, BinEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 12.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 18.0);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 10.0, 2);
    h.add(1.0);
    h.add(1.5);
    const std::string out = h.render();
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(VectorStats, MeanMedianPercentile)
{
    const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_DOUBLE_EQ(median(v), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0}), 1.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(VectorStats, Stddev)
{
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Distance, Euclidean)
{
    EXPECT_DOUBLE_EQ(euclideanDistance({0.0, 0.0}, {3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(euclideanDistance({1.0}, {1.0}), 0.0);
}

class HistogramSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>>
{
};

TEST_P(HistogramSweep, AllSamplesAccounted)
{
    const auto [lo, hi, bins] = GetParam();
    Histogram h(lo, hi, static_cast<std::size_t>(bins));
    std::size_t inside = 0;
    for (int i = -10; i < 110; ++i) {
        const double v = lo + (hi - lo) * i / 100.0;
        h.add(v);
        if (v >= lo && v < hi)
            ++inside;
    }
    std::size_t binned = 0;
    for (std::size_t b = 0; b < h.numBins(); ++b)
        binned += h.binCount(b);
    EXPECT_EQ(binned, inside);
    EXPECT_EQ(binned + h.underflow() + h.overflow(), h.totalCount());
}

INSTANTIATE_TEST_SUITE_P(Ranges, HistogramSweep,
    ::testing::Values(std::make_tuple(0.0, 1.0, 4),
                      std::make_tuple(-5.0, 5.0, 10),
                      std::make_tuple(100.0, 200.0, 7),
                      std::make_tuple(0.0, 1000.0, 100)));

} // namespace
} // namespace lf
