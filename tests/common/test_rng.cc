/** @file Unit and property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace lf {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(5, 11);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 11u);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(10);
    bool seen[4] = {false, false, false, false};
    for (int i = 0; i < 1000; ++i)
        seen[rng.uniformInt(0, 3)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sq = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / kN, 0.0, 0.02);
    EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, GaussianScaling)
{
    Rng rng(12);
    double sum = 0.0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(13);
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(14);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 3);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, MeanOfUniformNearHalf)
{
    Rng rng(GetParam());
    double sum = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1337, 99999,
                                           0xdeadbeef, UINT64_MAX));

} // namespace
} // namespace lf
