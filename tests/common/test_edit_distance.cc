/** @file Tests for the Wagner–Fischer edit distance. */

#include <gtest/gtest.h>

#include "common/edit_distance.hh"
#include "common/message.hh"
#include "common/rng.hh"

namespace lf {
namespace {

TEST(EditDistance, KnownCases)
{
    EXPECT_EQ(editDistance(std::string("kitten"),
                           std::string("sitting")), 3u);
    EXPECT_EQ(editDistance(std::string("flaw"), std::string("lawn")),
              2u);
    EXPECT_EQ(editDistance(std::string(""), std::string("abc")), 3u);
    EXPECT_EQ(editDistance(std::string("abc"), std::string("")), 3u);
    EXPECT_EQ(editDistance(std::string(""), std::string("")), 0u);
}

TEST(EditDistance, IdentityIsZero)
{
    EXPECT_EQ(editDistance(std::string("same"), std::string("same")),
              0u);
}

TEST(EditDistance, BitVectors)
{
    const std::vector<bool> a = {1, 0, 1, 1};
    const std::vector<bool> b = {1, 1, 1, 1};
    EXPECT_EQ(editDistance(a, b), 1u);
}

TEST(EditDistance, Symmetry)
{
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        auto a = makeMessage(MessagePattern::Random, 20, rng);
        auto b = makeMessage(MessagePattern::Random, 25, rng);
        EXPECT_EQ(editDistance(a, b), editDistance(b, a));
    }
}

TEST(EditDistance, BoundedByLongerLength)
{
    Rng rng(6);
    for (int trial = 0; trial < 50; ++trial) {
        auto a = makeMessage(MessagePattern::Random, 30, rng);
        auto b = makeMessage(MessagePattern::Random, 18, rng);
        EXPECT_LE(editDistance(a, b), 30u);
        EXPECT_GE(editDistance(a, b), 12u); // length difference
    }
}

TEST(EditDistance, TriangleInequality)
{
    Rng rng(7);
    for (int trial = 0; trial < 30; ++trial) {
        auto a = makeMessage(MessagePattern::Random, 16, rng);
        auto b = makeMessage(MessagePattern::Random, 16, rng);
        auto c = makeMessage(MessagePattern::Random, 16, rng);
        EXPECT_LE(editDistance(a, c),
                  editDistance(a, b) + editDistance(b, c));
    }
}

TEST(BitErrorRate, Basics)
{
    const std::vector<bool> sent = {1, 0, 1, 0};
    EXPECT_DOUBLE_EQ(bitErrorRate(sent, sent), 0.0);
    EXPECT_DOUBLE_EQ(bitErrorRate(sent, {1, 0, 1, 1}), 0.25);
    EXPECT_DOUBLE_EQ(bitErrorRate({}, {}), 0.0);
}

class SingleFlipSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SingleFlipSweep, OneFlipCostsOne)
{
    Rng rng(8);
    auto a = makeMessage(MessagePattern::Random, 32, rng);
    auto b = a;
    b[static_cast<std::size_t>(GetParam())] =
        !b[static_cast<std::size_t>(GetParam())];
    EXPECT_EQ(editDistance(a, b), 1u);
}

INSTANTIATE_TEST_SUITE_P(Positions, SingleFlipSweep,
                         ::testing::Range(0, 32, 3));

} // namespace
} // namespace lf
