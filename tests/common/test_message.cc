/** @file Tests for message patterns and bit-string helpers. */

#include <gtest/gtest.h>

#include "common/message.hh"

namespace lf {
namespace {

TEST(Message, AllZerosAndOnes)
{
    Rng rng(1);
    const auto zeros = makeMessage(MessagePattern::AllZeros, 16, rng);
    const auto ones = makeMessage(MessagePattern::AllOnes, 16, rng);
    for (int i = 0; i < 16; ++i) {
        EXPECT_FALSE(zeros[static_cast<std::size_t>(i)]);
        EXPECT_TRUE(ones[static_cast<std::size_t>(i)]);
    }
}

TEST(Message, Alternating)
{
    Rng rng(1);
    const auto msg = makeMessage(MessagePattern::Alternating, 8, rng);
    const std::vector<bool> expect = {0, 1, 0, 1, 0, 1, 0, 1};
    EXPECT_EQ(msg, expect);
}

TEST(Message, RandomIsBalancedish)
{
    Rng rng(2);
    const auto msg = makeMessage(MessagePattern::Random, 10000, rng);
    int ones = 0;
    for (bool b : msg)
        ones += b;
    EXPECT_NEAR(static_cast<double>(ones) / 10000.0, 0.5, 0.03);
}

TEST(Message, BitStringRoundTrip)
{
    const std::vector<bool> bits = {1, 0, 0, 1, 1};
    EXPECT_EQ(toBitString(bits), "10011");
    EXPECT_EQ(fromBitString("10011"), bits);
}

TEST(Message, TextRoundTrip)
{
    const std::string text = "leaky frontends!";
    EXPECT_EQ(bitsToText(textToBits(text)), text);
}

TEST(Message, TextToBitsMsbFirst)
{
    const auto bits = textToBits("A"); // 0x41 = 01000001
    const std::vector<bool> expect = {0, 1, 0, 0, 0, 0, 0, 1};
    EXPECT_EQ(bits, expect);
}

TEST(Message, PatternNames)
{
    EXPECT_STREQ(toString(MessagePattern::AllZeros), "all-0s");
    EXPECT_STREQ(toString(MessagePattern::Random), "random");
    EXPECT_EQ(allMessagePatterns().size(), 4u);
}

} // namespace
} // namespace lf
