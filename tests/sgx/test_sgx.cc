/** @file Integration tests for the SGX covert channels. */

#include <gtest/gtest.h>

#include <cctype>

#include "common/message.hh"
#include "core/nonmt_channels.hh"
#include "core/trial_context.hh"
#include "sgx/sgx_channels.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

std::vector<bool>
message(std::size_t bits = 30)
{
    Rng rng(6);
    return makeMessage(MessagePattern::Alternating, bits, rng);
}

SgxConfig
fastSgx()
{
    SgxConfig sgx;
    sgx.rounds = 2000; // keep tests quick
    sgx.mtSteps = 40;
    sgx.mtMeasPerStep = 10;
    return sgx;
}

class SgxChannelsOnCpu
    : public ::testing::TestWithParam<const CpuModel *>
{
};

TEST_P(SgxChannelsOnCpu, NonMtEvictionWorks)
{
    TrialContext ctx(*GetParam(), 41);
    ChannelConfig cfg;
    cfg.d = 6;
    SgxNonMtEvictionChannel channel(ctx.core(), cfg, fastSgx());
    const auto res = channel.transmit(message(), ctx, 8);
    EXPECT_LT(res.errorRate, 0.15);
    EXPECT_GT(res.transmissionKbps, 5.0);
    EXPECT_LT(res.transmissionKbps, 500.0);
}

TEST_P(SgxChannelsOnCpu, NonMtMisalignmentWorks)
{
    TrialContext ctx(*GetParam(), 42);
    ChannelConfig cfg;
    cfg.d = 5;
    cfg.M = 8;
    SgxNonMtMisalignmentChannel channel(ctx.core(), cfg, fastSgx());
    const auto res = channel.transmit(message(), ctx, 8);
    EXPECT_LT(res.errorRate, 0.15);
}

TEST_P(SgxChannelsOnCpu, SgxSlowerThanNonSgx)
{
    ChannelConfig cfg;
    cfg.d = 6;
    TrialContext sgx_ctx(*GetParam(), 43);
    SgxNonMtEvictionChannel sgx_channel(sgx_ctx.core(), cfg,
                                        fastSgx());
    const auto sgx_res = sgx_channel.transmit(message(), sgx_ctx, 8);

    TrialContext plain_ctx(*GetParam(), 43);
    NonMtEvictionChannel plain(plain_ctx.core(), cfg);
    const auto plain_res = plain.transmit(message(), plain_ctx, 8);
    // Paper: SGX rates are 1/25 - 1/30 of non-SGX; with the reduced
    // test rounds we still require a large gap.
    EXPECT_GT(plain_res.transmissionKbps,
              5.0 * sgx_res.transmissionKbps);
}

INSTANTIATE_TEST_SUITE_P(
    SgxCpus, SgxChannelsOnCpu, ::testing::ValuesIn(sgxCpuModels()),
    [](const ::testing::TestParamInfo<const CpuModel *> &info) {
        std::string name = info.param->name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(SgxMtChannels, EvictionWorksOnSmtSgxMachines)
{
    for (const CpuModel *cpu : sgxCpuModels()) {
        if (!cpu->smtEnabled)
            continue;
        TrialContext ctx(*cpu, 44);
        ChannelConfig cfg;
        cfg.d = 6;
        SgxMtEvictionChannel channel(ctx.core(), cfg, fastSgx());
        const auto res = channel.transmit(message(20), ctx, 6);
        EXPECT_LT(res.errorRate, 0.3) << cpu->name;
    }
}

TEST(SgxMtChannels, MisalignmentWorksOnSmtSgxMachines)
{
    for (const CpuModel *cpu : sgxCpuModels()) {
        if (!cpu->smtEnabled)
            continue;
        TrialContext ctx(*cpu, 45);
        ChannelConfig cfg;
        cfg.d = 5;
        cfg.M = 8;
        SgxMtMisalignmentChannel channel(ctx.core(), cfg, fastSgx());
        const auto res = channel.transmit(message(20), ctx, 6);
        EXPECT_LT(res.errorRate, 0.3) << cpu->name;
    }
}

TEST(SgxChannels, RequireSgxSupport)
{
    Core core(gold6226()); // no SGX on the Gold 6226
    ChannelConfig cfg;
    cfg.d = 6;
    EXPECT_DEATH(SgxNonMtEvictionChannel(core, cfg, SgxConfig{}),
                 "SGX");
}

TEST(SgxChannels, MtVariantRequiresSmt)
{
    Core core(xeonE2288G()); // SGX yes, SMT no
    ChannelConfig cfg;
    cfg.d = 6;
    EXPECT_DEATH(SgxMtEvictionChannel(core, cfg, SgxConfig{}), "SMT");
}

} // namespace
} // namespace lf
