/**
 * @file
 * End-to-end campaign tests for the determinism contract: an N-shard
 * campaign merged through mergeCampaign() must be byte-identical to
 * the unsharded SweepAccumulator summary of the same SweepSpec —
 * including after a mid-shard kill and resume, and on a warm-cache
 * rerun where almost nothing executes. Also covers merge refusing
 * incomplete campaigns with an actionable diagnostic, and status
 * rendering.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "campaign/campaign.hh"
#include "campaign/files.hh"
#include "campaign/grid_hash.hh"
#include "campaign/manifest.hh"
#include "run/runner.hh"
#include "run/sinks.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

namespace fs = std::filesystem;

constexpr int kShards = 4;

std::string
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lf_campaign_e2e_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** The reference: the plain unsharded streaming sweep summary. */
std::string
unshardedSummary(const SweepSpec &sweep)
{
    const ExperimentRunner runner(1);
    SweepSummarySink sink;
    std::ostringstream os;
    sink.writeHeader(os);
    runner.run(expandSweep(sweep), [&](const ExperimentResult &res) {
        sink.writeRow(res, os);
    });
    sink.writeFooter(os);
    return os.str();
}

SweepSpec
testSweep()
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction", "slow-switch"};
    sweep.cpus = {gold6226().name};
    sweep.axes = {{"rounds", {5, 10}}};
    sweep.trials = 3;
    sweep.seed = 4242;
    sweep.messageBits = 12;
    return sweep;
}

void
runShardOrFail(const std::string &dir, int shard,
               const ShardRunOptions &options,
               ShardRunStats *stats = nullptr)
{
    const std::string error =
        runCampaignShard(dir, shard, options, stats);
    ASSERT_EQ(error, "") << "shard " << shard;
}

std::string
mergeOrFail(const std::string &dir)
{
    std::string summary;
    const std::string error = mergeCampaign(dir, summary);
    EXPECT_EQ(error, "");
    return summary;
}

TEST(CampaignEndToEnd, FourShardMergeIsByteIdentical)
{
    const SweepSpec sweep = testSweep();
    const std::string reference = unshardedSummary(sweep);
    const std::string dir = scratchDir("merge_identity");

    ASSERT_EQ(planCampaign(sweep, kShards, dir), "");
    ShardRunOptions options;
    options.threads = 1;
    for (int shard = 0; shard < kShards; ++shard)
        runShardOrFail(dir, shard, options);

    EXPECT_EQ(mergeOrFail(dir), reference);
    // merge also persists the summary next to the shard files.
    std::string onDisk;
    ASSERT_EQ(readFileText(campaignSummaryPath(dir), onDisk), "");
    EXPECT_EQ(onDisk, reference);
}

TEST(CampaignEndToEnd, KillAndResumeReRunsOnlyMissingRows)
{
    const SweepSpec sweep = testSweep();
    const std::string reference = unshardedSummary(sweep);
    const std::string dir = scratchDir("kill_resume");
    ASSERT_EQ(planCampaign(sweep, kShards, dir), "");

    // "Kill" shard 1 after a single row.
    ShardRunOptions killed;
    killed.threads = 1;
    killed.maxNewRows = 1;
    ShardRunStats killedStats;
    runShardOrFail(dir, 1, killed, &killedStats);
    EXPECT_EQ(killedStats.executed, 1u);
    EXPECT_LT(killedStats.doneRows(), killedStats.totalRows);

    // Merging an incomplete campaign must refuse, naming the shard
    // to resume — not silently fold partial rows.
    std::string summary;
    const std::string mergeError = mergeCampaign(dir, summary);
    EXPECT_NE(mergeError, "");
    EXPECT_NE(mergeError.find("resume"), std::string::npos);

    // Resume everything; shard 1 must only execute what it misses.
    ShardRunOptions options;
    options.threads = 1;
    for (int shard = 0; shard < kShards; ++shard) {
        ShardRunStats stats;
        runShardOrFail(dir, shard, options, &stats);
        if (shard == 1) {
            EXPECT_EQ(stats.resumedRows, 1u);
            EXPECT_EQ(stats.executed, stats.totalRows - 1);
        }
        EXPECT_EQ(stats.doneRows(), stats.totalRows);
    }
    EXPECT_EQ(mergeOrFail(dir), reference);
}

TEST(CampaignEndToEnd, WarmCacheRerunIsByteIdentical)
{
    const SweepSpec sweep = testSweep();
    const std::string reference = unshardedSummary(sweep);
    const std::string root = scratchDir("warm_cache");
    const std::string cacheDir = root + "/cache";

    ShardRunOptions options;
    options.threads = 1;
    options.cacheDir = cacheDir;

    // Cold pass populates the cache.
    const std::string coldDir = root + "/cold";
    ASSERT_EQ(planCampaign(sweep, kShards, coldDir), "");
    for (int shard = 0; shard < kShards; ++shard)
        runShardOrFail(coldDir, shard, options);
    EXPECT_EQ(mergeOrFail(coldDir), reference);

    // Warm pass: fresh campaign dir, different shard count, same
    // grid — every row must come from the cache.
    const std::string warmDir = root + "/warm";
    ASSERT_EQ(planCampaign(sweep, 2, warmDir), "");
    for (int shard = 0; shard < 2; ++shard) {
        ShardRunStats stats;
        runShardOrFail(warmDir, shard, options, &stats);
        EXPECT_EQ(stats.executed, 0u);
        EXPECT_EQ(stats.cacheHits, stats.totalRows);
        EXPECT_EQ(stats.cacheHitRate(), 1.0);
    }
    EXPECT_EQ(mergeOrFail(warmDir), reference);
}

TEST(CampaignEndToEnd, PlanValidatesAndStatusTracksProgress)
{
    const SweepSpec sweep = testSweep(); // 4 cells.
    const std::string dir = scratchDir("status");

    // More shards than cells is a planning error, not a crash.
    EXPECT_NE(planCampaign(sweep, 5, dir), "");

    ASSERT_EQ(planCampaign(sweep, kShards, dir), "");
    const std::string plan = renderCampaignPlan(sweep, kShards);
    EXPECT_NE(plan.find("Campaign plan"), std::string::npos);

    CampaignManifest manifest;
    ASSERT_EQ(loadManifestFile(campaignManifestPath(dir), manifest),
              "");
    EXPECT_NE(plan.find(manifest.gridHash), std::string::npos);

    std::string status;
    ASSERT_EQ(campaignStatus(dir, status), "");
    EXPECT_NE(status.find("fresh"), std::string::npos);

    ShardRunOptions options;
    options.threads = 1;
    runShardOrFail(dir, 0, options);
    ASSERT_EQ(campaignStatus(dir, status), "");
    EXPECT_NE(status.find("done"), std::string::npos);
    EXPECT_NE(status.find("fresh"), std::string::npos);

    for (int shard = 1; shard < kShards; ++shard)
        runShardOrFail(dir, shard, options);
    mergeOrFail(dir);
    ASSERT_EQ(campaignStatus(dir, status), "");
    EXPECT_NE(status.find("merged"), std::string::npos);
}

TEST(CampaignEndToEnd, RowIndexMappingMatchesSpecOrder)
{
    // campaignRowIndex must enumerate exactly the global indices the
    // unsharded expansion assigns to this shard's rows, ascending.
    const SweepSpec sweep = testSweep();
    CampaignManifest manifest;
    ASSERT_EQ(planManifest(sweep, 3, manifest), "");
    const auto full = expandSweep(sweep);
    ASSERT_EQ(full.size(), manifest.rows);
    std::vector<bool> seen(manifest.rows, false);
    for (int shard = 0; shard < manifest.shards; ++shard) {
        const auto specs =
            expandSweep(sweep, {shard, manifest.shards});
        std::size_t previous = 0;
        for (std::size_t local = 0; local < specs.size(); ++local) {
            const std::size_t global =
                campaignRowIndex(manifest, shard, local);
            ASSERT_LT(global, manifest.rows);
            EXPECT_FALSE(seen[global]);
            seen[global] = true;
            if (local > 0) {
                EXPECT_GT(global, previous);
            }
            previous = global;
            // The spec at that global index in the full expansion is
            // this shard-local spec.
            EXPECT_EQ(canonicalTrialText(specs[local]),
                      canonicalTrialText(full[global]));
        }
    }
    for (std::size_t index = 0; index < manifest.rows; ++index)
        EXPECT_TRUE(seen[index]) << "row " << index << " unassigned";
}

} // namespace
} // namespace lf
