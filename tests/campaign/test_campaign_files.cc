/**
 * @file
 * Campaign file-format tests: grid-hash canonicalization, the result
 * record codec (exact double round-trips, string escaping), and the
 * hardening contract — corrupt or truncated manifests, checkpoints,
 * shard results, and cache entries must fail with a diagnostic naming
 * the path and reason, never crash or silently drop rows. The only
 * tolerated damage is an *unterminated* trailing line in the
 * append-only shard files (what a kill leaves behind), which is
 * dropped and re-run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "campaign/cache.hh"
#include "campaign/campaign.hh"
#include "campaign/files.hh"
#include "campaign/grid_hash.hh"
#include "campaign/manifest.hh"
#include "campaign/record.hh"
#include "campaign/shard_log.hh"

namespace lf {
namespace {

namespace fs = std::filesystem;

/** Fresh per-test scratch directory. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lf_campaign_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
readAll(const std::string &path)
{
    std::string text;
    EXPECT_EQ(readFileText(path, text), "");
    return text;
}

void
writeAll(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
    ASSERT_TRUE(os.good());
}

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.channels = {"nonmt-fast-eviction", "slow-switch"};
    spec.cpus = {"Gold 6226"};
    spec.axes = {{"rounds", {5, 10}}};
    spec.baseOverrides = {{"d", 40}};
    spec.trials = 3;
    spec.seed = 99;
    spec.messageBits = 16;
    return spec;
}

ExperimentResult
sampleResult()
{
    ExperimentResult res;
    res.spec.label = "label with spaces, commas: and %";
    res.spec.channel = "nonmt-fast-eviction";
    res.spec.cpu = "Gold 6226";
    res.spec.seed = 0xdeadbeefcafef00dULL;
    res.spec.trial = 7;
    res.spec.pattern = MessagePattern::Random;
    res.spec.messageBits = 48;
    res.spec.preambleBits = -1;
    res.spec.overrides = {{"rounds", 10.0},
                          {"model.jitterPerKcycle", 0.125}};
    res.ok = true;
    res.result.errorRate = 1.0 / 3.0; // Not exactly representable.
    res.result.transmissionKbps = 419.67000000000002;
    res.result.seconds = 2.3283064365386963e-10;
    return res;
}

// ---- Grid hash ----

TEST(GridHash, StableAndSensitive)
{
    const SweepSpec spec = smallSpec();
    const std::string hash = gridHash(spec);
    EXPECT_EQ(hash.size(), 16u);
    EXPECT_EQ(hash, gridHash(spec)); // Deterministic.

    // Every identity-relevant field moves the hash.
    SweepSpec other = spec;
    other.seed = 100;
    EXPECT_NE(gridHash(other), hash);
    other = spec;
    other.trials = 4;
    EXPECT_NE(gridHash(other), hash);
    other = spec;
    other.axes[0].values.push_back(20);
    EXPECT_NE(gridHash(other), hash);
    other = spec;
    other.channels.pop_back();
    EXPECT_NE(gridHash(other), hash);
    other = spec;
    other.baseOverrides["d"] = 41;
    EXPECT_NE(gridHash(other), hash);

    // Field boundaries cannot be confused: moving a character across
    // adjacent list entries changes the serialization.
    SweepSpec glued = spec;
    glued.channels = {"nonmt-fast-evictions", "low-switch"};
    EXPECT_NE(gridHash(glued), hash);
}

TEST(GridHash, TrialKeyCoversSeedAndOverrides)
{
    const ExperimentResult res = sampleResult();
    const std::string key = trialKey(res.spec);
    EXPECT_EQ(key.size(), 16u);

    ExperimentSpec other = res.spec;
    other.seed ^= 1;
    EXPECT_NE(trialKey(other), key);
    other = res.spec;
    other.overrides["rounds"] = 11.0;
    EXPECT_NE(trialKey(other), key);
    other = res.spec;
    other.trial = 8;
    EXPECT_NE(trialKey(other), key);
}

// ---- Record codec ----

TEST(ResultRecord, RoundTripsExactly)
{
    const ExperimentResult res = sampleResult();
    const std::string line = encodeResultRecord(12345, res);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    std::size_t index = 0;
    ExperimentResult back;
    ASSERT_EQ(decodeResultRecord(line, index, back), "");
    EXPECT_EQ(index, 12345u);
    EXPECT_EQ(back.spec.label, res.spec.label);
    EXPECT_EQ(back.spec.channel, res.spec.channel);
    EXPECT_EQ(back.spec.cpu, res.spec.cpu);
    EXPECT_EQ(back.spec.seed, res.spec.seed);
    EXPECT_EQ(back.spec.trial, res.spec.trial);
    EXPECT_EQ(back.spec.pattern, res.spec.pattern);
    EXPECT_EQ(back.spec.messageBits, res.spec.messageBits);
    EXPECT_EQ(back.spec.preambleBits, res.spec.preambleBits);
    EXPECT_EQ(back.spec.overrides, res.spec.overrides);
    EXPECT_EQ(back.ok, res.ok);
    EXPECT_EQ(back.skipped, res.skipped);
    // Bit-exact doubles — the merged summary depends on it.
    EXPECT_EQ(back.result.errorRate, res.result.errorRate);
    EXPECT_EQ(back.result.transmissionKbps,
              res.result.transmissionKbps);
    EXPECT_EQ(back.result.seconds, res.result.seconds);
    // The canonical trial text (the cache address) survives too.
    EXPECT_EQ(canonicalTrialText(back.spec),
              canonicalTrialText(res.spec));
}

TEST(ResultRecord, ErrorRowsRoundTrip)
{
    ExperimentResult res = sampleResult();
    res.ok = false;
    res.error = "unknown override key \"bogus\" = 1";
    const std::string line = encodeResultRecord(0, res);
    std::size_t index = 0;
    ExperimentResult back;
    ASSERT_EQ(decodeResultRecord(line, index, back), "");
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, res.error);
}

TEST(ResultRecord, CorruptRecordsDiagnose)
{
    const std::string line =
        encodeResultRecord(3, sampleResult());
    std::size_t index = 0;
    ExperimentResult back;

    // Truncation mid-field.
    EXPECT_NE(decodeResultRecord(line.substr(0, line.size() / 2),
                                 index, back), "");
    // A field renamed.
    std::string renamed = line;
    renamed.replace(renamed.find("seed="), 5, "sead=");
    const std::string error = decodeResultRecord(renamed, index, back);
    EXPECT_NE(error, "");
    EXPECT_NE(error.find("seed"), std::string::npos);
    // A non-numeric number.
    std::string bad = line;
    bad.replace(bad.find("error_rate=") + 11, 1, "x");
    EXPECT_NE(decodeResultRecord(bad, index, back), "");
    // Trailing junk.
    EXPECT_NE(decodeResultRecord(line + " extra=1", index, back), "");
}

TEST(PercentEncoding, RoundTripsAndRejects)
{
    const std::string nasty =
        "a b%c,d:e=f\n\tg\x1f\x7f";
    std::string out;
    ASSERT_TRUE(percentDecode(percentEncode(nasty), out));
    EXPECT_EQ(out, nasty);
    EXPECT_EQ(percentEncode(nasty).find(' '), std::string::npos);

    EXPECT_FALSE(percentDecode("%2", out));  // Truncated escape.
    EXPECT_FALSE(percentDecode("%zz", out)); // Bad hex.
}

// ---- Manifest ----

TEST(Manifest, RoundTripsThroughText)
{
    CampaignManifest manifest;
    ASSERT_EQ(planManifest(smallSpec(), 3, manifest), "");
    EXPECT_EQ(manifest.cells, 4u);
    EXPECT_EQ(manifest.rows, 12u);

    CampaignManifest back;
    ASSERT_EQ(parseManifest(renderManifest(manifest), "mem", back),
              "");
    EXPECT_EQ(back.gridHash, manifest.gridHash);
    EXPECT_EQ(back.shards, manifest.shards);
    EXPECT_EQ(back.cells, manifest.cells);
    EXPECT_EQ(back.rows, manifest.rows);
    EXPECT_EQ(gridHash(back.spec), gridHash(manifest.spec));
    EXPECT_EQ(renderManifest(back), renderManifest(manifest));
}

TEST(Manifest, TruncationAndCorruptionDiagnose)
{
    CampaignManifest manifest;
    ASSERT_EQ(planManifest(smallSpec(), 2, manifest), "");
    const std::string text = renderManifest(manifest);

    CampaignManifest back;
    // Truncated: missing the end sentinel (and its line).
    std::string error = parseManifest(
        text.substr(0, text.size() - 4), "camp/manifest.txt", back);
    EXPECT_NE(error.find("camp/manifest.txt"), std::string::npos);
    EXPECT_NE(error.find("truncated"), std::string::npos);

    // A spec field edited after planning: parses, but the recomputed
    // grid hash disagrees with the pinned one.
    std::string tampered = text;
    const std::size_t pos = tampered.find("seed 99");
    ASSERT_NE(pos, std::string::npos);
    tampered.replace(pos, 7, "seed 98");
    error = parseManifest(tampered, "m", back);
    EXPECT_NE(error.find("grid hash mismatch"), std::string::npos);

    // Garbage line.
    error = parseManifest("lfcampaign-manifest v1\nwat 3\nend\n", "m",
                          back);
    EXPECT_NE(error.find("unknown manifest line"), std::string::npos);

    // Wrong version.
    error = parseManifest("lfcampaign-manifest v9\nend\n", "m", back);
    EXPECT_NE(error.find("unsupported manifest version"),
              std::string::npos);
}

TEST(Manifest, FileRoundTripAndMissingFile)
{
    const std::string dir = scratchDir("manifest_file");
    CampaignManifest manifest;
    ASSERT_EQ(planManifest(smallSpec(), 2, manifest), "");
    ASSERT_EQ(writeManifestFile(manifest, dir + "/manifest.txt"), "");

    CampaignManifest back;
    EXPECT_EQ(loadManifestFile(dir + "/manifest.txt", back), "");
    EXPECT_EQ(back.gridHash, manifest.gridHash);

    const std::string error =
        loadManifestFile(dir + "/absent.txt", back);
    EXPECT_NE(error.find("absent.txt"), std::string::npos);
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ---- Shard log ----

class ShardLogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = scratchDir("shard_log");
        ASSERT_EQ(planManifest(smallSpec(), 2, manifest_), "");
    }

    /** Write rows [0, n) of shard 0 through a fresh writer. */
    void writeRows(int n)
    {
        ShardLogState state;
        ASSERT_EQ(loadShardLog(dir_, 0, manifest_.gridHash, 2,
                               manifest_.rows, state), "");
        ShardLogWriter writer;
        ASSERT_EQ(writer.open(dir_, 0, manifest_.gridHash, 2, state),
                  "");
        for (int i = 0; i < n; ++i) {
            ExperimentResult res = sampleResult();
            res.spec.trial = i;
            ASSERT_EQ(writer.append(
                          campaignRowIndex(manifest_, 0,
                                           static_cast<std::size_t>(i)),
                          res), "");
        }
    }

    std::string dir_;
    CampaignManifest manifest_;
};

TEST_F(ShardLogTest, RoundTripsRowsAndCheckpoints)
{
    writeRows(3);
    ShardLogState state;
    ASSERT_EQ(loadShardLog(dir_, 0, manifest_.gridHash, 2,
                           manifest_.rows, state), "");
    EXPECT_EQ(state.rows.size(), 3u);
    EXPECT_EQ(state.checkpointed.size(), 3u);
    for (const auto &[index, res] : state.rows) {
        EXPECT_EQ(state.checkpointed.count(index), 1u);
        EXPECT_TRUE(res.ok);
    }
}

TEST_F(ShardLogTest, KillTruncatedTailIsDroppedNotFatal)
{
    writeRows(3);
    // Simulate a kill mid-row-write: the last results line is cut in
    // half (no newline) and its checkpoint line — which is only
    // written after the row flushes — does not exist yet.
    const std::string resultsPath = shardResultsPath(dir_, 0);
    const std::string results = readAll(resultsPath);
    writeAll(resultsPath, results.substr(0, results.size() - 20));
    const std::string checkpointPath = shardCheckpointPath(dir_, 0);
    const std::string checkpoint = readAll(checkpointPath);
    const std::size_t lastDone =
        checkpoint.rfind("done", checkpoint.size() - 2);
    ASSERT_NE(lastDone, std::string::npos);
    writeAll(checkpointPath, checkpoint.substr(0, lastDone));

    ShardLogState state;
    ASSERT_EQ(loadShardLog(dir_, 0, manifest_.gridHash, 2,
                           manifest_.rows, state), "");
    // The damaged row is dropped (to be re-run); rows 0-1 survive.
    EXPECT_EQ(state.rows.size(), 2u);
    EXPECT_EQ(state.checkpointed.size(), 2u);
    EXPECT_LT(state.resultsValidBytes, results.size());

    // And a resumed writer truncates the damaged tails before
    // appending, so the files heal.
    ShardLogWriter writer;
    ASSERT_EQ(writer.open(dir_, 0, manifest_.gridHash, 2, state), "");
    ExperimentResult res = sampleResult();
    res.spec.trial = 2;
    ASSERT_EQ(writer.append(campaignRowIndex(manifest_, 0, 2), res),
              "");
    ShardLogState healed;
    ASSERT_EQ(loadShardLog(dir_, 0, manifest_.gridHash, 2,
                           manifest_.rows, healed), "");
    EXPECT_EQ(healed.rows.size(), 3u);
    EXPECT_EQ(healed.checkpointed.size(), 3u);
}

TEST_F(ShardLogTest, CheckpointTailDropRunsRowUncheckpointed)
{
    writeRows(3);
    const std::string path = shardCheckpointPath(dir_, 0);
    const std::string text = readAll(path);
    // Cut the last checkpoint line in half (kill between row flush
    // and checkpoint flush): the row stays, `done` is lost.
    writeAll(path, text.substr(0, text.size() - 3));

    ShardLogState state;
    ASSERT_EQ(loadShardLog(dir_, 0, manifest_.gridHash, 2,
                           manifest_.rows, state), "");
    EXPECT_EQ(state.rows.size(), 3u);
    EXPECT_EQ(state.checkpointed.size(), 2u);
    EXPECT_LT(state.checkpointValidBytes, text.size());
}

TEST_F(ShardLogTest, MalformedTerminatedLinesDiagnose)
{
    writeRows(2);
    const std::string path = shardResultsPath(dir_, 0);
    writeAll(path, readAll(path) + "row garbage here\n");

    ShardLogState state;
    const std::string error = loadShardLog(
        dir_, 0, manifest_.gridHash, 2, manifest_.rows, state);
    EXPECT_NE(error.find(path), std::string::npos);
    EXPECT_NE(error.find("line 4"), std::string::npos);
}

TEST_F(ShardLogTest, WrongCampaignOrShardHeaderRejected)
{
    writeRows(1);
    ShardLogState state;
    // Wrong grid hash.
    std::string error = loadShardLog(
        dir_, 0, std::string(16, '0'), 2, manifest_.rows, state);
    EXPECT_NE(error.find("different campaign"), std::string::npos);

    // Same files presented as another shard.
    const std::string other = shardResultsPath(dir_, 1);
    std::error_code ec;
    std::filesystem::copy_file(shardResultsPath(dir_, 0), other, ec);
    ASSERT_FALSE(ec);
    error = loadShardLog(dir_, 1, manifest_.gridHash, 2,
                         manifest_.rows, state);
    EXPECT_NE(error.find("different campaign or shard"),
              std::string::npos);
}

TEST_F(ShardLogTest, CheckpointWithoutResultIsCorruption)
{
    writeRows(1);
    const std::string path = shardCheckpointPath(dir_, 0);
    writeAll(path, readAll(path) + "done 2\n");

    ShardLogState state;
    const std::string error = loadShardLog(
        dir_, 0, manifest_.gridHash, 2, manifest_.rows, state);
    EXPECT_NE(error.find("checkpointed but missing"),
              std::string::npos);
}

// ---- Cache ----

TEST(ResultCacheTest, StoreLookupRoundTrip)
{
    const std::string root = scratchDir("cache");
    const ResultCache cache(root);
    const ExperimentResult res = sampleResult();

    ExperimentResult back;
    std::string error;
    EXPECT_FALSE(cache.lookup(res.spec, back, error)); // Cold miss.
    EXPECT_EQ(error, "");

    ASSERT_EQ(cache.store(res.spec, res), "");
    ASSERT_TRUE(cache.lookup(res.spec, back, error)) << error;
    EXPECT_EQ(back.result.errorRate, res.result.errorRate);
    EXPECT_EQ(back.result.transmissionKbps,
              res.result.transmissionKbps);

    // A different seed is a different content address.
    ExperimentSpec other = res.spec;
    other.seed ^= 1;
    EXPECT_FALSE(cache.lookup(other, back, error));
    EXPECT_EQ(error, "");
}

TEST(ResultCacheTest, DisabledCacheIsInert)
{
    const ResultCache cache;
    ExperimentResult back;
    std::string error;
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.lookup(sampleResult().spec, back, error));
    EXPECT_EQ(error, "");
    EXPECT_EQ(cache.store(sampleResult().spec, sampleResult()), "");
}

TEST(ResultCacheTest, LegacyFlatLayoutEntriesStillServe)
{
    // A cache written before the two-hex sharding filed entries flat
    // under the root; lookups must keep serving them unmigrated, and
    // new stores must land sharded.
    const std::string root = scratchDir("cache_legacy");
    const ResultCache cache(root);
    const ExperimentResult res = sampleResult();

    // File the entry the way the pre-sharding layout did: write it
    // sharded (store() is the only encoder), then relocate the file.
    ASSERT_EQ(cache.store(res.spec, res), "");
    const std::string sharded = cache.entryPath(res.spec);
    const std::string flat = cache.legacyEntryPath(res.spec);
    fs::rename(sharded, flat);
    ASSERT_FALSE(fs::exists(sharded));

    ExperimentResult back;
    std::string error;
    ASSERT_TRUE(cache.lookup(res.spec, back, error)) << error;
    EXPECT_EQ(back.result.errorRate, res.result.errorRate);
    EXPECT_EQ(back.result.transmissionKbps,
              res.result.transmissionKbps);

    // A legacy entry is still held to the full hardening contract.
    const std::string text = readAll(flat);
    writeAll(flat, text.substr(0, text.size() / 2));
    EXPECT_FALSE(cache.lookup(res.spec, back, error));
    EXPECT_NE(error.find(flat), std::string::npos);
    EXPECT_NE(error.find("corrupt"), std::string::npos);

    // Re-storing writes the sharded path and it takes precedence over
    // the (now corrupt) flat leftover — migration by rewrite.
    ASSERT_EQ(cache.store(res.spec, res), "");
    ASSERT_TRUE(fs::exists(sharded));
    ASSERT_TRUE(cache.lookup(res.spec, back, error)) << error;
    EXPECT_EQ(back.result.errorRate, res.result.errorRate);
}

TEST(ResultCacheTest, CorruptEntriesDiagnoseNotMiss)
{
    const std::string root = scratchDir("cache_corrupt");
    const ResultCache cache(root);
    const ExperimentResult res = sampleResult();
    ASSERT_EQ(cache.store(res.spec, res), "");
    const std::string path = cache.entryPath(res.spec);

    // Truncated entry.
    const std::string text = readAll(path);
    writeAll(path, text.substr(0, text.size() / 2));
    ExperimentResult back;
    std::string error;
    EXPECT_FALSE(cache.lookup(res.spec, back, error));
    EXPECT_NE(error.find(path), std::string::npos);
    EXPECT_NE(error.find("corrupt"), std::string::npos);

    // An entry whose stored spec is a *different* trial (misfiled /
    // bit rot): must refuse, not serve the wrong result.
    ExperimentResult other = res;
    other.spec.seed ^= 1;
    std::string swapped =
        std::string("lfcampaign-cache v1\nkey ") +
        trialKey(res.spec) + "\nrow " +
        encodeResultRecord(0, other) + "\nend\n";
    writeAll(path, swapped);
    EXPECT_FALSE(cache.lookup(res.spec, back, error));
    EXPECT_NE(error.find("does not match"), std::string::npos);
}

} // namespace
} // namespace lf
